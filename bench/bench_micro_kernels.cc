// Data-path sweep: before/after comparison of the operator data path under
// a Zipf-weighted plan mix (SA + AC).
//
//  - SA linear scoring, dense vs sparse-fused: the "dense" baseline
//    materializes the concatenated dense feature vector (zero + scatter)
//    and runs a full-width scalar dot — the black-box data path a runtime
//    without whole-pipeline visibility pays. The sparse-fused path is the
//    Oven's Concat->Linear fusion: per-source sparse dots at the Flour
//    layout offsets, no concatenated vector, no dense materialization.
//    SHAPE-CHECK: >= 3x (the SA featurizers emit >99% zeros at paper scale;
//    even at bench scale nnz is a few hundred against a 10^4 dense width).
//
//  - Dense kernels, scalar vs dispatched backend: MatVec/KMeans at AC plan
//    shapes and one larger PCA shape. Informational (the dispatched backend
//    equals the scalar one unless the build enables PRETZEL_AVX2 and the
//    CPU supports it); golden parity across backends is pinned by
//    datapath_parity_test, not here.
//
//  - Batch-major dense stages, per-item vs SoA: B matvecs vs one blocked
//    matrix-matrix kernel (transpose cost charged to the batch side).
//    SHAPE-CHECK at B >= 8: >= 1.5x per record on parallel hosts; on a
//    1-core host the margin compresses under timeslicing noise, so the
//    check degrades to a >= 0.9x no-regression guard.
//
// Writes BENCH_datapath.json (archived by the CI bench-smoke job).
#include <memory>

#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/flour/flour.h"
#include "src/ops/feature_vector.h"
#include "src/ops/kernels.h"
#include "src/oven/model_plan.h"
#include "src/runtime/exec_context.h"
#include "src/workload/load_gen.h"

namespace pretzel {
namespace {

double g_sink = 0.0;  // Defeats dead-code elimination across timed loops.

template <typename T>
const T* NodeParams(const PipelineSpec& spec, OpKind kind) {
  for (const auto& node : spec.nodes) {
    if (node.params->kind() == kind) {
      return static_cast<const T*>(node.params.get());
    }
  }
  return nullptr;
}

// One SA pipeline's pre-featurized state: the branch sparse count vectors
// for one input, plus the model. Featurization (tokenize + scans) is common
// to both scoring paths, so it happens once outside the timed region.
struct SaScoreCase {
  const LinearBinaryParams* linear = nullptr;
  size_t char_dim = 0;
  size_t word_dim = 0;
  FeatureVector char_features;
  FeatureVector word_features;
};

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  using namespace pretzel;
  BenchFlags flags(argc, argv);
  PrintHeader("Operator data path",
              "Sparse-fused vs dense scoring, SIMD dispatch, batch-major "
              "dense stages (Zipf over SA+AC plans)");

  SaWorkloadOptions sa_opts;
  sa_opts.num_pipelines = static_cast<size_t>(flags.GetInt("sa_pipelines", 8));
  sa_opts.char_dict_entries =
      static_cast<size_t>(flags.GetInt("char_entries", 8000));
  sa_opts.word_dict_entries =
      static_cast<size_t>(flags.GetInt("word_entries", 2000));
  sa_opts.vocabulary_size = static_cast<size_t>(flags.GetInt("vocab", 4000));
  const auto sa = SaWorkload::Generate(sa_opts);

  AcWorkloadOptions ac_opts;
  ac_opts.num_pipelines = static_cast<size_t>(flags.GetInt("ac_pipelines", 8));
  const auto ac = AcWorkload::Generate(ac_opts);

  const int score_reps = static_cast<int>(flags.GetInt("score_reps", 2000));
  const int batch_reps = static_cast<int>(flags.GetInt("batch_reps", 400));
  const double zipf =
      static_cast<double>(flags.GetInt("zipf_x100", 120)) / 100.0;

  const KernelBackend backend = ActiveKernelBackend();
  std::printf("\n  dense-kernel backend: %s\n", KernelBackendName(backend));

  BenchJson json("datapath");
  json.Add("backend", KernelBackendName(backend));
  json.Add("sa_pipelines", static_cast<double>(sa.pipelines().size()));
  json.Add("ac_pipelines", static_cast<double>(ac.pipelines().size()));
  json.Add("zipf_alpha", zipf);
  bool pass = true;

  // -------------------------------------------------------------------
  // 1. SA linear scoring: dense materialization vs sparse-fused dots.
  Rng rng(4001);
  std::vector<std::unique_ptr<SaScoreCase>> cases;
  size_t total_nnz = 0;
  size_t total_dim = 0;
  {
    VectorPool pool;
    ExecContext ctx(&pool);
    for (const auto& spec : sa.pipelines()) {
      auto c = std::make_unique<SaScoreCase>();
      const auto* cp = NodeParams<CharNgramParams>(spec, OpKind::kCharNgram);
      const auto* wp = NodeParams<WordNgramParams>(spec, OpKind::kWordNgram);
      c->linear = NodeParams<LinearBinaryParams>(spec, OpKind::kLinearBinary);
      c->char_dim = cp->dict.size();
      c->word_dim = wp->dict.size();
      const std::string input = sa.SampleInput(rng);
      TokenizerParams tok;
      TokenizeInto(input, tok, &ctx.text, &ctx.spans);
      ctx.raw_hits.clear();
      CharNgramScan(ctx.text, ctx.spans, *cp,
                    [&](uint32_t id) { ctx.raw_hits.push_back(id); });
      c->char_features.AssignCounts(ctx.raw_hits, c->char_dim);
      ctx.raw_hits.clear();
      WordNgramScan(ctx.text, ctx.spans, *wp,
                    [&](uint32_t id) { ctx.raw_hits.push_back(id); });
      c->word_features.AssignCounts(ctx.raw_hits, c->word_dim);
      total_nnz += c->char_features.nnz() + c->word_features.nnz();
      total_dim += c->char_dim + c->word_dim;
      cases.push_back(std::move(c));
    }
  }
  const std::vector<size_t> sa_seq =
      ZipfModelSequence(cases.size(), static_cast<size_t>(score_reps), zipf,
                        4002);

  std::vector<float> dense_scratch;
  const int64_t t_dense0 = NowNs();
  for (const size_t m : sa_seq) {
    const SaScoreCase& c = *cases[m];
    const std::vector<float>& w = c.linear->weights;
    // The dense data path: materialize the concatenated dense feature
    // vector, then a full-width scalar dot.
    dense_scratch.assign(c.char_dim + c.word_dim, 0.0f);
    const uint32_t* ids = c.char_features.ids();
    const float* vals = c.char_features.values();
    for (size_t i = 0; i < c.char_features.nnz(); ++i) {
      dense_scratch[ids[i]] += vals[i];
    }
    ids = c.word_features.ids();
    vals = c.word_features.values();
    for (size_t i = 0; i < c.word_features.nnz(); ++i) {
      dense_scratch[ids[i] + c.char_dim] += vals[i];
    }
    const size_t n = std::min(dense_scratch.size(), w.size());
    g_sink += Sigmoid(internal::DotF32Scalar(dense_scratch.data(), w.data(), n) +
                      c.linear->bias);
  }
  const double dense_ns =
      static_cast<double>(NowNs() - t_dense0) / sa_seq.size();

  const int64_t t_sparse0 = NowNs();
  for (const size_t m : sa_seq) {
    const SaScoreCase& c = *cases[m];
    const std::vector<float>& w = c.linear->weights;
    // The sparse-fused path (StageKind::kSparseLinear): per-source sparse
    // dots at the concat-layout offsets, no materialization.
    double acc = SparseDot(c.char_features.ids(), c.char_features.values(),
                           c.char_features.nnz(), w.data(), c.char_dim);
    const size_t word_avail = w.size() > c.char_dim ? w.size() - c.char_dim : 0;
    acc += SparseDot(c.word_features.ids(), c.word_features.values(),
                     c.word_features.nnz(), w.data() + c.char_dim,
                     std::min(c.word_dim, word_avail));
    g_sink += Sigmoid(static_cast<float>(acc) + c.linear->bias);
  }
  const double sparse_ns =
      static_cast<double>(NowNs() - t_sparse0) / sa_seq.size();

  const double density =
      static_cast<double>(total_nnz) / static_cast<double>(total_dim);
  const double sparse_speedup = dense_ns / sparse_ns;
  std::printf(
      "\n  SA linear scoring (Zipf(%.2f) over %zu plans, %zu scores, "
      "density %.2f%%):\n"
      "  %-24s %10.0f ns/score\n  %-24s %10.0f ns/score  (%.2fx)\n",
      zipf, cases.size(), sa_seq.size(), density * 100.0, "dense-scalar",
      dense_ns, "sparse-fused", sparse_ns, sparse_speedup);
  json.Add("sa_density", density);
  json.Add("sa_dense_ns", dense_ns);
  json.Add("sa_sparse_fused_ns", sparse_ns);
  json.Add("sa_sparse_speedup", sparse_speedup);
  pass &= ShapeCheck(
      sparse_speedup >= 3.0,
      "sparse-fused linear scoring is >= 3x dense-scalar on SA plans "
      "(the featurizers emit almost-all-zero vectors)");

  // -------------------------------------------------------------------
  // 2. Dense kernels: forced-scalar vs dispatched backend (informational).
  {
    const auto* pca = NodeParams<PcaParams>(ac.pipelines()[0], OpKind::kPca);
    const auto* km = NodeParams<KMeansParams>(ac.pipelines()[0], OpKind::kKMeans);
    const size_t big_out = 64, big_in = 256;
    std::vector<float> big_matrix(big_out * big_in);
    std::vector<float> big_in_v(big_in);
    Rng krng(4003);
    for (auto& v : big_matrix) v = static_cast<float>(krng.Normal());
    for (auto& v : big_in_v) v = static_cast<float>(krng.Normal());
    std::vector<float> in_v(pca->in_dim);
    for (auto& v : in_v) v = static_cast<float>(krng.Normal());
    std::vector<float> out_v(big_out);

    const auto time_kernels = [&](int reps) {
      const int64_t t0 = NowNs();
      for (int r = 0; r < reps; ++r) {
        MatVec(pca->matrix.data(), pca->out_dim, pca->in_dim, in_v.data(),
               out_v.data());
        KMeansTransform(km->centroids.data(), km->k, km->dim, in_v.data(),
                        out_v.data());
        MatVec(big_matrix.data(), big_out, big_in, big_in_v.data(),
               out_v.data());
        g_sink += out_v[0];
      }
      return static_cast<double>(NowNs() - t0) / reps;
    };
    const int reps = score_reps * 4;
    SetForceScalarKernels(true);
    const double scalar_ns = time_kernels(reps);
    SetForceScalarKernels(false);
    const double dispatched_ns = time_kernels(reps);
    const double simd_speedup = scalar_ns / dispatched_ns;
    std::printf(
        "\n  dense kernels (PCA %ux%u + KMeans %ux%u + MatVec %zux%zu):\n"
        "  %-24s %10.0f ns/iter\n  %-24s %10.0f ns/iter  (%.2fx, backend "
        "%s)\n",
        pca->out_dim, pca->in_dim, km->k, km->dim, big_out, big_in,
        "forced-scalar", scalar_ns, "dispatched", dispatched_ns, simd_speedup,
        KernelBackendName(backend));
    if (backend == KernelBackend::kScalar) {
      std::printf(
          "  NOTE: scalar backend active (build without PRETZEL_AVX2 or CPU "
          "without AVX2);\n  dispatched == scalar, ratio is noise around "
          "1.0.\n");
    }
    json.Add("kernel_scalar_ns", scalar_ns);
    json.Add("kernel_dispatched_ns", dispatched_ns);
    json.Add("kernel_simd_speedup", simd_speedup);
  }

  // -------------------------------------------------------------------
  // 3. Batch-major dense stages: per-item matvecs vs one SoA kernel.
  {
    const auto* pca = NodeParams<PcaParams>(ac.pipelines()[0], OpKind::kPca);
    const auto* km = NodeParams<KMeansParams>(ac.pipelines()[0], OpKind::kKMeans);
    const size_t in_dim = std::max<size_t>(pca->in_dim, km->dim);
    Rng brng(4004);
    double best_ratio = 0.0;
    std::printf("\n  batch-major dense stages (PCA %ux%u + KMeans %ux%u):\n",
                pca->out_dim, pca->in_dim, km->k, km->dim);
    std::printf("  %-8s %16s %16s %10s\n", "B", "per-item ns/rec",
                "batch-major ns/rec", "speedup");
    for (const size_t B : {size_t{1}, size_t{8}, size_t{16}, size_t{32},
                           size_t{64}}) {
      std::vector<float> rows(B * in_dim);
      for (auto& v : rows) v = static_cast<float>(brng.Normal());
      std::vector<float> soa(in_dim * B);
      std::vector<float> out_item(pca->out_dim + km->k);
      std::vector<float> out_soa((pca->out_dim + km->k) * B);

      // Min of 3 timed passes per side: a preemption on this (possibly
      // 1-core) host inflates one pass, not the min.
      const auto time_item = [&] {
        const int64_t t0 = NowNs();
        for (int r = 0; r < batch_reps; ++r) {
          for (size_t b = 0; b < B; ++b) {
            const float* row = rows.data() + b * in_dim;
            MatVec(pca->matrix.data(), pca->out_dim, pca->in_dim, row,
                   out_item.data());
            KMeansTransform(km->centroids.data(), km->k, km->dim, row,
                            out_item.data() + pca->out_dim);
          }
          g_sink += out_item[0];
        }
        return static_cast<double>(NowNs() - t0) / (batch_reps * B);
      };
      const auto time_batch = [&] {
        const int64_t t0 = NowNs();
        for (int r = 0; r < batch_reps; ++r) {
          TransposeToSoA(rows.data(), B, in_dim, in_dim, soa.data());
          MatVecBatchSoA(pca->matrix.data(), pca->out_dim, pca->in_dim,
                         soa.data(), B, out_soa.data());
          KMeansTransformBatchSoA(km->centroids.data(), km->k, km->dim,
                                  soa.data(), B,
                                  out_soa.data() + pca->out_dim * B);
          g_sink += out_soa[0];
        }
        return static_cast<double>(NowNs() - t0) / (batch_reps * B);
      };
      double item_ns = time_item();
      double batch_ns = time_batch();
      for (int pass = 1; pass < 3; ++pass) {
        item_ns = std::min(item_ns, time_item());
        batch_ns = std::min(batch_ns, time_batch());
      }
      const double ratio = item_ns / batch_ns;
      if (B >= 8) {
        best_ratio = std::max(best_ratio, ratio);
      }
      std::printf("  %-8zu %16.1f %16.1f %9.2fx\n", B, item_ns, batch_ns,
                  ratio);
      json.Add("batch_b" + std::to_string(B) + "_item_ns", item_ns);
      json.Add("batch_b" + std::to_string(B) + "_soa_ns", batch_ns);
      json.Add("batch_b" + std::to_string(B) + "_speedup", ratio);
    }
    const bool parallel_host = std::thread::hardware_concurrency() >= 2;
    json.Add("batch_best_speedup", best_ratio);
    json.Add("parallel_host", parallel_host ? "true" : "false");
    if (parallel_host) {
      pass &= ShapeCheck(
          best_ratio >= 1.5,
          "batch-major dense stages are >= 1.5x per-item at some B >= 8 "
          "(one blocked matrix-matrix kernel replaces B matvecs)");
    } else {
      std::printf(
          "  NOTE: 1-core host; timeslicing noise compresses micro-kernel "
          "margins, so\n  the 1.5x claim degrades to a no-regression "
          "guard.\n");
      pass &= ShapeCheck(
          best_ratio >= 0.9,
          "[1-core fallback] batch-major dense stages are no slower than "
          "per-item at B >= 8");
    }
  }

  // -------------------------------------------------------------------
  // 4. End-to-end: ExecutePlanBatch vs a per-record ExecutePlan loop on an
  // AC plan, and a Zipf SA+AC ExecutePlan mix (informational context for
  // the stage-level numbers above).
  {
    ObjectStore store;
    FlourContext flour(&store);
    VectorPool pool;
    ExecContext ctx(&pool);
    auto program = flour.FromPipeline(ac.pipelines()[0]);
    auto plan = Plan(*program, "ac0");
    const size_t B = 32;
    std::vector<std::string> inputs;
    Rng erng(4005);
    for (size_t b = 0; b < B; ++b) {
      inputs.push_back(ac.SampleInput(erng));
    }
    std::vector<float> scores(B);
    // Warm.
    (void)ExecutePlanBatch(**plan, inputs.data(), B, scores.data(), ctx,
                           nullptr);
    const int64_t t_loop0 = NowNs();
    for (int r = 0; r < batch_reps; ++r) {
      for (size_t b = 0; b < B; ++b) {
        auto res = ExecutePlan(**plan, inputs[b], ctx);
        scores[b] = res.ok() ? *res : 0.0f;
      }
      g_sink += scores[0];
    }
    const double loop_ns =
        static_cast<double>(NowNs() - t_loop0) / (batch_reps * B);
    const int64_t t_batch0 = NowNs();
    for (int r = 0; r < batch_reps; ++r) {
      (void)ExecutePlanBatch(**plan, inputs.data(), B, scores.data(), ctx,
                             nullptr);
      g_sink += scores[0];
    }
    const double e2e_batch_ns =
        static_cast<double>(NowNs() - t_batch0) / (batch_reps * B);
    std::printf(
        "\n  AC end-to-end at B=%zu: per-record %.0f ns, batch-major %.0f ns "
        "(%.2fx; trees + parse are per-record either way)\n",
        B, loop_ns, e2e_batch_ns, loop_ns / e2e_batch_ns);
    json.Add("ac_e2e_item_ns", loop_ns);
    json.Add("ac_e2e_batch_ns", e2e_batch_ns);
    json.Add("ac_e2e_speedup", loop_ns / e2e_batch_ns);

    // Zipf SA+AC mix through the full fused plans.
    std::vector<std::shared_ptr<ModelPlan>> plans;
    std::vector<std::string> mix_inputs;
    for (const auto& spec : sa.pipelines()) {
      auto p = flour.FromPipeline(spec);
      plans.push_back(*Plan(*p, spec.name));
      mix_inputs.push_back(sa.SampleInput(erng));
    }
    for (const auto& spec : ac.pipelines()) {
      auto p = flour.FromPipeline(spec);
      plans.push_back(*Plan(*p, spec.name));
      mix_inputs.push_back(ac.SampleInput(erng));
    }
    const std::vector<size_t> mix_seq = ZipfModelSequence(
        plans.size(), static_cast<size_t>(score_reps), zipf, 4006);
    for (size_t m = 0; m < plans.size(); ++m) {  // Warm every plan.
      (void)ExecutePlan(*plans[m], mix_inputs[m], ctx);
    }
    const int64_t t_mix0 = NowNs();
    for (const size_t m : mix_seq) {
      auto res = ExecutePlan(*plans[m], mix_inputs[m], ctx);
      g_sink += res.ok() ? *res : 0.0;
    }
    const double mix_ns = static_cast<double>(NowNs() - t_mix0) / mix_seq.size();
    std::printf("  Zipf(%.2f) SA+AC fused-plan mix: %.0f ns/prediction\n",
                zipf, mix_ns);
    json.Add("zipf_mix_ns", mix_ns);
  }

  json.Add("shape_check", pass ? "PASS" : "FAIL");
  json.Write();
  std::printf("\n  (sink %g)\n", g_sink);
  (void)pass;  // Shape results are the printed contract; exit 0 like the suite.
  return 0;
}
