// Google-benchmark micro-benchmarks of the compute kernels and of a full
// prediction under both execution models. Not a paper figure by itself —
// these are the building blocks behind Figures 4/5/9 and are useful when
// tuning the kernels.
#include <benchmark/benchmark.h>

#include "src/blackbox/blackbox_model.h"
#include "src/flour/flour.h"
#include "src/ops/kernels.h"
#include "src/oven/model_plan.h"
#include "src/workload/ac_workload.h"
#include "src/workload/sa_workload.h"

namespace pretzel {
namespace {

const SaWorkload& GetSa() {
  static const SaWorkload* sa = [] {
    SaWorkloadOptions opts;
    opts.num_pipelines = 1;
    opts.char_dict_entries = 8000;
    opts.word_dict_entries = 2000;
    opts.vocabulary_size = 4000;
    return new SaWorkload(SaWorkload::Generate(opts));
  }();
  return *sa;
}

const AcWorkload& GetAc() {
  static const AcWorkload* ac = [] {
    AcWorkloadOptions opts;
    opts.num_pipelines = 1;
    return new AcWorkload(AcWorkload::Generate(opts));
  }();
  return *ac;
}

void BM_Tokenize(benchmark::State& state) {
  Rng rng(1);
  const std::string input = GetSa().SampleInput(rng);
  TokenizerParams params;
  std::string text;
  std::vector<std::pair<uint32_t, uint32_t>> spans;
  for (auto _ : state) {
    TokenizeInto(input, params, &text, &spans);
    benchmark::DoNotOptimize(spans.size());
  }
}
BENCHMARK(BM_Tokenize);

void BM_CharNgramScan(benchmark::State& state) {
  Rng rng(2);
  const auto& spec = GetSa().pipelines()[0];
  const auto& params = static_cast<const CharNgramParams&>(*spec.nodes[1].params);
  const std::string input = GetSa().SampleInput(rng);
  TokenizerParams tok;
  std::string text;
  std::vector<std::pair<uint32_t, uint32_t>> spans;
  TokenizeInto(input, tok, &text, &spans);
  for (auto _ : state) {
    uint64_t hits = 0;
    CharNgramScan(text, spans, params, [&](uint32_t) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_CharNgramScan);

void BM_WordNgramScan(benchmark::State& state) {
  Rng rng(3);
  const auto& spec = GetSa().pipelines()[0];
  const auto& params = static_cast<const WordNgramParams&>(*spec.nodes[2].params);
  const std::string input = GetSa().SampleInput(rng);
  TokenizerParams tok;
  std::string text;
  std::vector<std::pair<uint32_t, uint32_t>> spans;
  TokenizeInto(input, tok, &text, &spans);
  for (auto _ : state) {
    uint64_t hits = 0;
    WordNgramScan(text, spans, params, [&](uint32_t) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_WordNgramScan);

void BM_ForestEval(benchmark::State& state) {
  Rng rng(4);
  Forest forest = BuildRandomForest(64, 40, 6, rng);
  std::vector<float> features(40);
  for (auto& f : features) {
    f = static_cast<float>(rng.Normal());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.Eval(features));
  }
}
BENCHMARK(BM_ForestEval);

void BM_BlackBoxPredictSa(benchmark::State& state) {
  const auto& spec = GetSa().pipelines()[0];
  auto model = BlackBoxModel::Load(SaveModelImage(spec), BlackBoxOptions());
  Rng rng(5);
  const std::string input = GetSa().SampleInput(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*model)->Predict(input));
  }
}
BENCHMARK(BM_BlackBoxPredictSa);

void BM_PretzelPredictSa(benchmark::State& state) {
  static ObjectStore store;
  FlourContext ctx(&store);
  auto program = ctx.FromPipeline(GetSa().pipelines()[0]);
  auto plan = Plan(*program, "sa");
  VectorPool pool;
  ExecContext exec(&pool);
  Rng rng(5);
  const std::string input = GetSa().SampleInput(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecutePlan(**plan, input, exec));
  }
}
BENCHMARK(BM_PretzelPredictSa);

void BM_BlackBoxPredictAc(benchmark::State& state) {
  const auto& spec = GetAc().pipelines()[0];
  auto model = BlackBoxModel::Load(SaveModelImage(spec), BlackBoxOptions());
  Rng rng(6);
  const std::string input = GetAc().SampleInput(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*model)->Predict(input));
  }
}
BENCHMARK(BM_BlackBoxPredictAc);

void BM_PretzelPredictAc(benchmark::State& state) {
  static ObjectStore store;
  FlourContext ctx(&store);
  auto program = ctx.FromPipeline(GetAc().pipelines()[0]);
  auto plan = Plan(*program, "ac");
  VectorPool pool;
  ExecContext exec(&pool);
  Rng rng(6);
  const std::string input = GetAc().SampleInput(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecutePlan(**plan, input, exec));
  }
}
BENCHMARK(BM_PretzelPredictAc);

void BM_ColdLoadSa(benchmark::State& state) {
  const std::string image = SaveModelImage(GetSa().pipelines()[0]);
  for (auto _ : state) {
    auto model = BlackBoxModel::Load(image, BlackBoxOptions());
    benchmark::DoNotOptimize(model.ok());
  }
}
BENCHMARK(BM_ColdLoadSa);

}  // namespace
}  // namespace pretzel

BENCHMARK_MAIN();
