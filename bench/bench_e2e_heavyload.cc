// Figure 14: end-to-end heavy load — PRETZEL + FrontEnd vs ML.Net + Clipper,
// AC pipelines, every request latency-sensitive (batch 1), open-loop load
// sweep. The paper's result: PRETZEL's throughput keeps climbing to ~300
// rps while Clipper's stays flat and its latency explodes (hundreds of
// containers context-switching).
#include <atomic>
#include <condition_variable>
#include <thread>

#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/flour/flour.h"
#include "src/frontend/backends.h"
#include "src/oven/model_plan.h"
#include "src/runtime/runtime.h"
#include "src/workload/load_gen.h"

namespace pretzel {
namespace {

struct LoadPoint {
  double offered_rps = 0.0;
  double qps = 0.0;
  double mean_latency_ms = 0.0;
};

// Drives an open-loop schedule through a FrontEnd; returns throughput and
// mean client-observed latency.
LoadPoint DriveLoad(FrontEnd& frontend, const std::vector<std::string>& names,
                    const std::vector<std::string>& inputs, double rps,
                    double duration_s, uint64_t seed) {
  auto schedule = GenerateLoadSchedule(names.size(), rps, duration_s, 2.0, seed);
  std::atomic<size_t> completed{0};
  std::atomic<int64_t> total_ns{0};
  std::atomic<size_t> pending{schedule.size()};
  std::mutex mu;
  std::condition_variable cv;

  const int64_t start = NowNs();
  for (const auto& event : schedule) {
    const int64_t target = start + static_cast<int64_t>(event.arrival_seconds * 1e9);
    while (NowNs() < target) {
      std::this_thread::yield();
    }
    const size_t m = event.model_index;
    const int64_t submit = NowNs();
    Status admitted = frontend.RequestAsync(
        names[m], inputs[m], [&, submit](Result<float> r) {
          if (r.ok()) {
            completed.fetch_add(1, std::memory_order_relaxed);
            total_ns.fetch_add(NowNs() - submit, std::memory_order_relaxed);
          }
          if (pending.fetch_sub(1) == 1) {
            std::lock_guard<std::mutex> lock(mu);
            cv.notify_one();
          }
        });
    if (!admitted.ok()) {  // Backpressure drop: no callback will fire.
      if (pending.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_one();
      }
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return pending.load() == 0; });
  }
  const double elapsed_s = static_cast<double>(NowNs() - start) / 1e9;
  LoadPoint point;
  point.offered_rps = rps;
  point.qps = static_cast<double>(completed.load()) / elapsed_s;
  point.mean_latency_ms = completed.load() == 0
                              ? 0.0
                              : static_cast<double>(total_ns.load()) /
                                    completed.load() / 1e6;
  return point;
}

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  using namespace pretzel;
  BenchFlags flags(argc, argv);
  PrintHeader("Figure 14",
              "End-to-end heavy load, AC pipelines: PRETZEL vs ML.Net+Clipper");

  auto ac_opts = DefaultAcOptions(flags);
  ac_opts.num_pipelines = static_cast<size_t>(flags.GetInt("pipelines", 50));
  auto ac = AcWorkload::Generate(ac_opts);
  const double duration = flags.GetInt("duration_ms", 1200) / 1000.0;
  const size_t executors = static_cast<size_t>(flags.GetInt(
      "executors", std::max(1u, std::thread::hardware_concurrency())));

  std::vector<std::string> names;
  std::vector<std::string> inputs;
  Rng rng(7001);
  for (const auto& spec : ac.pipelines()) {
    names.push_back(spec.name);
    inputs.push_back(ac.SampleInput(rng));
  }
  // Sweep until the container-per-model design saturates: the Zipf head
  // model's single-threaded container becomes the bottleneck while
  // PRETZEL's shared Executors keep absorbing load.
  std::vector<double> loads;
  const double max_load = static_cast<double>(flags.GetInt("max_rps", 4000));
  for (double l = max_load / 16; l <= max_load; l *= 2) {
    loads.push_back(l);
  }

  // --- PRETZEL + FrontEnd ---
  ObjectStore store;
  RuntimeOptions ropts;
  ropts.num_executors = executors;
  Runtime runtime(&store, ropts);
  PretzelBackend pretzel_backend(&runtime);
  {
    FlourContext ctx(&store);
    for (const auto& spec : ac.pipelines()) {
      auto program = ctx.FromPipeline(spec);
      auto id = runtime.Register(*Plan(*program, spec.name));
      pretzel_backend.AddRoute(spec.name, *id);
    }
  }
  FrontEndOptions fopts;
  fopts.network_delay_us = 150;
  fopts.num_io_threads = 4;
  FrontEnd pretzel_fe(&pretzel_backend, fopts);

  // --- ML.Net + Clipper ---
  ContainerOptions copts;
  copts.rpc_delay_us = 100;
  copts.container_overhead_bytes = kContainerOverheadBytes;
  copts.blackbox.per_model_runtime_bytes = kPerModelRuntimeBytes;
  ClipperCluster cluster(copts);
  for (const auto& spec : ac.pipelines()) {
    (void)cluster.Deploy(spec.name, SaveModelImage(spec));
  }
  ClipperBackend clipper_backend(&cluster);
  FrontEnd clipper_fe(&clipper_backend, fopts);

  // Warm both.
  for (size_t m = 0; m < names.size(); ++m) {
    (void)pretzel_fe.Request(names[m], inputs[m]);
    (void)clipper_fe.Request(names[m], inputs[m]);
  }

  std::printf("  %-12s | %-14s %-14s | %-14s %-14s\n", "offered rps",
              "PRETZEL qps", "PRETZEL ms", "Clipper qps", "Clipper ms");
  double pretzel_best = 0.0, clipper_best = 0.0;
  double pretzel_lat_at_max = 0.0, clipper_lat_at_max = 0.0;
  for (size_t i = 0; i < loads.size(); ++i) {
    auto p = DriveLoad(pretzel_fe, names, inputs, loads[i], duration, 7100 + i);
    auto c = DriveLoad(clipper_fe, names, inputs, loads[i], duration, 7200 + i);
    std::printf("  %-12.0f | %-14.0f %-14.2f | %-14.0f %-14.2f\n", loads[i], p.qps,
                p.mean_latency_ms, c.qps, c.mean_latency_ms);
    pretzel_best = std::max(pretzel_best, p.qps);
    clipper_best = std::max(clipper_best, c.qps);
    pretzel_lat_at_max = p.mean_latency_ms;
    clipper_lat_at_max = c.mean_latency_ms;
  }
  ShapeCheck(pretzel_best > clipper_best,
             "PRETZEL sustains higher end-to-end throughput than ML.Net+Clipper");
  ShapeCheck(clipper_lat_at_max > pretzel_lat_at_max,
             "Clipper's latency under peak load exceeds PRETZEL's (paper: "
             "several folds)");
  return 0;
}
