// Ingest-path comparison: text records (parsed every request) vs
// BinaryRecord wire inputs (validated, never converted). Three measurements
// per family, all on one thread so the ratios isolate the data path:
//
//   1. Ingest stage alone — dense text parse vs binary validate+alias
//      (records/s). This is the cost the zero-parse format deletes.
//   2. End-to-end batch scoring — ExecutePlanBatch over all-text vs
//      all-binary pools (records/s), where binary records also skip the AoS
//      staging copy (payloads gather straight into the SoA transpose).
//   3. SA end-to-end — per-record text featurize+score vs pre-featurized
//      sparse record validate+score.
//
// Plus a text-vs-binary score parity gate. Results land in
// BENCH_ingest.json for CI archiving.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/common/serialize.h"
#include "src/flour/flour.h"
#include "src/oven/model_plan.h"
#include "src/ops/kernels.h"
#include "src/runtime/exec_context.h"
#include "src/workload/load_gen.h"

using namespace pretzel;

namespace {

std::vector<std::string_view> Views(const std::vector<std::string>& pool) {
  return std::vector<std::string_view>(pool.begin(), pool.end());
}

double RecordsPerSecond(size_t records, int64_t elapsed_ns) {
  return elapsed_ns > 0 ? records * 1e9 / static_cast<double>(elapsed_ns)
                        : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags(argc, argv);
  const size_t ac_pipelines =
      static_cast<size_t>(flags.GetInt("ac_pipelines", 8));
  const size_t sa_pipelines =
      static_cast<size_t>(flags.GetInt("sa_pipelines", 8));
  const size_t num_inputs = static_cast<size_t>(flags.GetInt("inputs", 512));
  const size_t reps = static_cast<size_t>(flags.GetInt("reps", 20));
  const size_t batch = static_cast<size_t>(flags.GetInt("batch", 32));

  PrintHeader("Ingest: zero-parse binary records vs text parsing",
              "stage-level and end-to-end records/s, text vs BinaryRecord");

  AcWorkloadOptions ac_opts = DefaultAcOptions(flags);
  ac_opts.num_pipelines = ac_pipelines;
  const auto ac = AcWorkload::Generate(ac_opts);
  SaWorkloadOptions sa_opts = DefaultSaOptions(flags);
  sa_opts.num_pipelines = sa_pipelines;
  const auto sa = SaWorkload::Generate(sa_opts);

  ObjectStore store;
  FlourContext flour(&store);
  VectorPool pool;
  ExecContext ctx(&pool);
  BenchJson json("ingest");
  json.Add("inputs", static_cast<double>(num_inputs));
  json.Add("reps", static_cast<double>(reps));
  json.Add("batch", static_cast<double>(batch));
  bool ok = true;

  // -------------------------------------------------------------------
  // 1. Dense ingest stage alone: parse vs validate (same sampled values).
  std::printf("\n-- dense ingest stage (AC records, %zu x %zu reps)\n",
              num_inputs, reps);
  const auto text_pool =
      GenerateInputPool(ac, 0, num_inputs, WireFormat::kText, 77);
  std::vector<std::string> binary_pool;
  binary_pool.reserve(text_pool.size());
  for (const auto& text : text_pool) {
    binary_pool.push_back(AcWorkload::BinaryFromText(text));
  }

  std::vector<float> parsed;
  double checksum = 0.0;
  int64_t t0 = NowNs();
  for (size_t r = 0; r < reps; ++r) {
    for (const auto& text : text_pool) {
      ParseDenseInput(text, &parsed);
      checksum += parsed.back();
    }
  }
  const int64_t text_parse_ns = NowNs() - t0;

  t0 = NowNs();
  for (size_t r = 0; r < reps; ++r) {
    for (const auto& record : binary_pool) {
      BinaryRecordView view;
      if (ParseBinaryRecord(record, &view).ok() && view.values != nullptr) {
        checksum += view.values[view.dim - 1];
      }
    }
  }
  const int64_t binary_validate_ns = NowNs() - t0;

  const size_t stage_records = num_inputs * reps;
  const double text_parse_rps = RecordsPerSecond(stage_records, text_parse_ns);
  const double binary_validate_rps =
      RecordsPerSecond(stage_records, binary_validate_ns);
  const double ingest_speedup =
      text_parse_rps > 0 ? binary_validate_rps / text_parse_rps : 0.0;
  std::printf("  %-28s %12.0f records/s\n", "text parse", text_parse_rps);
  std::printf("  %-28s %12.0f records/s\n", "binary validate+alias",
              binary_validate_rps);
  std::printf("  ingest speedup: %.2fx  (checksum %g)\n", ingest_speedup,
              checksum);
  json.Add("text_parse_rps", text_parse_rps);
  json.Add("binary_validate_rps", binary_validate_rps);
  json.Add("ingest_speedup", ingest_speedup);
  ok &= ShapeCheck(ingest_speedup >= 2.0,
                   "binary ingest >= 2x text parse on the dense AC mix");

  // -------------------------------------------------------------------
  // 2. Dense end-to-end: batch scoring over all-text vs all-binary pools.
  std::printf("\n-- dense end-to-end batch scoring (batch=%zu)\n", batch);
  const auto text_views = Views(text_pool);
  const auto binary_views = Views(binary_pool);
  std::vector<float> scores(num_inputs, 0.0f);
  double ac_text_rps = 0.0, ac_binary_rps = 0.0;
  {
    auto program = flour.FromPipeline(ac.pipelines()[0]);
    auto plan = Plan(*program, "ingest_ac");
    if (!plan.ok()) {
      std::printf("  compile failed: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    const auto drive = [&](const std::vector<std::string_view>& views) {
      const int64_t start = NowNs();
      for (size_t r = 0; r < reps; ++r) {
        for (size_t begin = 0; begin < views.size(); begin += batch) {
          const size_t n = std::min(batch, views.size() - begin);
          ExecutePlanBatch(**plan, views.data() + begin, n,
                           scores.data() + begin, ctx, nullptr);
        }
      }
      return RecordsPerSecond(stage_records, NowNs() - start);
    };
    ac_text_rps = drive(text_views);
    ac_binary_rps = drive(binary_views);
  }
  const double ac_e2e_speedup =
      ac_text_rps > 0 ? ac_binary_rps / ac_text_rps : 0.0;
  std::printf("  %-28s %12.0f records/s\n", "text batch score", ac_text_rps);
  std::printf("  %-28s %12.0f records/s\n", "binary batch score",
              ac_binary_rps);
  std::printf("  end-to-end speedup: %.2fx\n", ac_e2e_speedup);
  json.Add("ac_e2e_text_rps", ac_text_rps);
  json.Add("ac_e2e_binary_rps", ac_binary_rps);
  json.Add("ac_e2e_speedup", ac_e2e_speedup);
  ok &= ShapeCheck(ac_e2e_speedup >= 1.0,
                   "zero-copy batch gather does not regress dense scoring");

  // -------------------------------------------------------------------
  // 3. SA end-to-end: featurize+score vs pre-featurized sparse records.
  std::printf("\n-- SA end-to-end per-record scoring\n");
  const auto sa_texts =
      GenerateInputPool(sa, 0, num_inputs, WireFormat::kText, 99);
  std::vector<std::string> sa_binaries;
  sa_binaries.reserve(sa_texts.size());
  for (const auto& text : sa_texts) {
    sa_binaries.push_back(sa.BinaryFromText(text, 0));
  }
  double sa_text_rps = 0.0, sa_binary_rps = 0.0;
  {
    auto program = flour.FromPipeline(sa.pipelines()[0]);
    auto plan = Plan(*program, "ingest_sa");
    if (!plan.ok()) {
      std::printf("  compile failed: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    const auto drive = [&](const std::vector<std::string>& inputs) {
      const int64_t start = NowNs();
      for (size_t r = 0; r < reps; ++r) {
        for (const auto& input : inputs) {
          auto result = ExecutePlan(**plan, input, ctx);
          if (result.ok()) {
            checksum += *result;
          }
        }
      }
      return RecordsPerSecond(stage_records, NowNs() - start);
    };
    sa_text_rps = drive(sa_texts);
    sa_binary_rps = drive(sa_binaries);
  }
  const double sa_e2e_speedup =
      sa_text_rps > 0 ? sa_binary_rps / sa_text_rps : 0.0;
  std::printf("  %-28s %12.0f records/s\n", "text featurize+score",
              sa_text_rps);
  std::printf("  %-28s %12.0f records/s\n", "sparse validate+score",
              sa_binary_rps);
  std::printf("  end-to-end speedup: %.2fx\n", sa_e2e_speedup);
  json.Add("sa_e2e_text_rps", sa_text_rps);
  json.Add("sa_e2e_binary_rps", sa_binary_rps);
  json.Add("sa_e2e_speedup", sa_e2e_speedup);

  // -------------------------------------------------------------------
  // 4. Parity gate: both encodings of one sample score identically.
  std::printf("\n-- wire parity gate\n");
  size_t parity_failures = 0;
  {
    auto ac_program = flour.FromPipeline(ac.pipelines()[0]);
    auto ac_plan = Plan(*ac_program, "parity_ac");
    auto sa_program = flour.FromPipeline(sa.pipelines()[0]);
    auto sa_plan = Plan(*sa_program, "parity_sa");
    const size_t checks = std::min<size_t>(num_inputs, 64);
    for (size_t i = 0; i < checks; ++i) {
      auto t = ExecutePlan(**ac_plan, text_pool[i], ctx);
      auto b = ExecutePlan(**ac_plan, binary_pool[i], ctx);
      if (!t.ok() || !b.ok() || std::fabs(*t - *b) > 1e-5) {
        ++parity_failures;
      }
      t = ExecutePlan(**sa_plan, sa_texts[i], ctx);
      b = ExecutePlan(**sa_plan, sa_binaries[i], ctx);
      if (!t.ok() || !b.ok() || std::fabs(*t - *b) > 1e-5) {
        ++parity_failures;
      }
    }
  }
  json.Add("parity_failures", static_cast<double>(parity_failures));
  ok &= ShapeCheck(parity_failures == 0,
                   "binary records score identically to their text twins");

  json.Add("shape_checks_passed", ok ? 1.0 : 0.0);
  json.Write();
  std::printf("\nbench_ingest: %s\n", ok ? "all shape checks passed"
                                         : "SHAPE-CHECK FAILURES (see above)");
  return 0;
}
