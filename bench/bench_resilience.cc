// Resilience under overload: goodput and tail latency of the sharded
// serving stack through a flash crowd, with and without SLO-aware
// shedding (deadline propagation + deadline-aware admission).
//
// Protocol: place the SA suite on a ShardRouter (one executor per shard),
// calibrate the mean single-prediction latency, and replay an open-loop
// flash-crowd schedule (load_gen: Poisson base load at ~60% of calibrated
// capacity, a burst window at burst_x that aim-piles onto the hottest
// model). Every request has the same SLO; the two configurations differ
// only in whether the deadline is propagated into the stack:
//
//   no-shed: deadline_ns = 0. Every request is admitted, queues balloon
//            through the burst, and the backlog serves requests that have
//            long since missed their SLO — classic queue collapse.
//   shed:    deadline_ns = arrival + SLO. Doomed work is refused at
//            admission (ResourceExhausted + retry hint), dropped at
//            dispatch, and abandoned between batch quanta, so post-burst
//            capacity serves requests that can still make their SLO.
//
// Goodput is completions within SLO per second of wall time. The paper-
// shaped claim: under the same flash crowd, shedding sustains >= 1.2x the
// no-shed goodput on parallel hosts (no-collapse guard on 1-core hosts),
// and the work it does complete stays near the SLO instead of riding the
// backlog tail.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/serving/shard_router.h"
#include "src/workload/load_gen.h"

namespace pretzel {
namespace {

struct DriveResult {
  double wall_s = 0.0;
  size_t good = 0;     // Completed within SLO.
  size_t late = 0;     // Completed, SLO missed.
  size_t shed = 0;     // Refused with ResourceExhausted (admission shed).
  size_t expired = 0;  // Dropped inside the stack with DeadlineExceeded.
  size_t errors = 0;
  double p99_us = 0.0;     // Over completed requests, arrival -> done.
  double goodput = 0.0;    // good / wall_s.
};

// Replays `schedule` open-loop against a fresh router built from `sopts`.
// Latency is measured from the scheduled arrival, so dispatcher lag counts
// against the server, identically in both configurations.
DriveResult Drive(const SaWorkload& sa, const ShardRouterOptions& sopts,
                  const std::vector<LoadEvent>& schedule,
                  const std::vector<std::string>& inputs, int64_t slo_ns,
                  bool shed_enabled) {
  ShardRouter router(sopts);
  std::vector<std::string> names;
  for (const auto& spec : sa.pipelines()) {
    auto placed = router.Place(spec);
    if (!placed.ok()) {
      std::printf("  place failed: %s\n", placed.status().ToString().c_str());
      std::exit(1);
    }
    names.push_back(spec.name);
  }

  DriveResult result;
  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;
  SampleStats latency_us;

  // Chunked open-loop pacing: all arrivals due in each 1ms window are
  // submitted flat-out, then the dispatcher sleeps to the window edge.
  // Per-event sleeps would self-clock on coarse sleep granularity (the
  // dispatcher falls behind exactly as fast as the executors drain, so no
  // backlog ever forms and there is nothing to shed); 1ms windows keep the
  // schedule honest while letting a burst actually outrun service.
  constexpr int64_t kWindowNs = 1'000'000;
  const int64_t t0 = NowNs();
  size_t accepted = 0;
  for (const LoadEvent& ev : schedule) {
    const int64_t target =
        t0 + static_cast<int64_t>(ev.arrival_seconds * 1e9);
    const int64_t window_start = (target - t0) / kWindowNs * kWindowNs + t0;
    const int64_t now = NowNs();
    if (now < window_start) {
      SleepUs((window_start - now) / 1000);
    }
    const int64_t deadline = target + slo_ns;
    Status st = router.PredictAsync(
        names[ev.model_index], inputs[ev.model_index],
        [&, target, deadline](Result<float> r) {
          const int64_t done_ns = NowNs();
          std::lock_guard<std::mutex> lock(mu);
          if (r.ok()) {
            latency_us.Add(static_cast<double>(done_ns - target) / 1e3);
            if (done_ns <= deadline) {
              ++result.good;
            } else {
              ++result.late;
            }
          } else if (r.status().IsResourceExhausted()) {
            ++result.shed;
          } else if (r.status().IsDeadlineExceeded()) {
            ++result.expired;
          } else {
            ++result.errors;
          }
          ++completed;
          cv.notify_all();
        },
        shed_enabled ? deadline : 0);
    if (st.ok()) {
      ++accepted;
    } else {
      // Synchronous refusals update the same counters the async completions
      // write under `mu`; take it here too or the writes race.
      std::lock_guard<std::mutex> lock(mu);
      if (st.IsResourceExhausted()) {
        ++result.shed;  // Admission shed: refused synchronously, with a hint.
      } else if (st.IsDeadlineExceeded()) {
        ++result.expired;
      } else {
        ++result.errors;
      }
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return completed == accepted; });
  }
  result.wall_s = static_cast<double>(NowNs() - t0) / 1e9;
  result.p99_us = latency_us.P99();
  result.goodput = static_cast<double>(result.good) / result.wall_s;
  return result;
}

void PrintDrive(const char* label, const DriveResult& r, size_t total) {
  std::printf(
      "  %-8s goodput %8.0f/s  good %6zu/%zu  late %6zu  shed %6zu  "
      "expired %6zu  err %zu  p99 %.0fus  wall %.2fs\n",
      label, r.goodput, r.good, total, r.late, r.shed, r.expired, r.errors,
      r.p99_us, r.wall_s);
}

}  // namespace
}  // namespace pretzel

int main(int argc, char** argv) {
  using namespace pretzel;
  BenchFlags flags(argc, argv);
  PrintHeader("resilience: SLO-aware shedding under a flash crowd",
              "goodput with deadlines propagated vs. accepted-then-late");

  SaWorkloadOptions wopts = DefaultSaOptions(flags);
  wopts.num_pipelines = static_cast<size_t>(flags.GetInt("pipelines", 24));
  const SaWorkload sa = SaWorkload::Generate(wopts);

  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const size_t shards =
      static_cast<size_t>(flags.GetInt("shards", std::min<size_t>(4, std::max<size_t>(1, hw / 2))));
  ShardRouterOptions sopts;
  sopts.num_shards = shards;
  sopts.runtime.num_executors = 1;

  // One fixed input per model (inputs are not the variable under test).
  // Each is `input_reps` samples joined into one long document: per-request
  // cost must dwarf dispatch cost, or the open-loop driver can never push
  // the stack past capacity and the burst has nothing to shed.
  const size_t input_reps =
      static_cast<size_t>(flags.GetInt("input_reps", 25));
  Rng rng(17);
  std::vector<std::string> inputs;
  for (size_t m = 0; m < sa.pipelines().size(); ++m) {
    std::string doc;
    for (size_t rep = 0; rep < input_reps; ++rep) {
      if (!doc.empty()) {
        doc += ' ';
      }
      doc += sa.SampleInput(rng);
    }
    inputs.push_back(std::move(doc));
  }

  // Calibrate the true async service rate (coalescing, warm caches, and
  // executor parallelism included) on a throwaway router: a flat-out async
  // drive, completions per second. A sync-latency estimate undershoots
  // badly, and an undershot capacity means the "burst" never actually
  // exceeds service and there is nothing to shed.
  double capacity_rps;
  double lat_us;
  {
    ShardRouter probe(sopts);
    for (const auto& spec : sa.pipelines()) {
      if (!probe.Place(spec).ok()) {
        std::printf("  calibration place failed\n");
        return 1;
      }
    }
    for (size_t m = 0; m < sa.pipelines().size(); ++m) {
      (void)probe.Predict(sa.pipelines()[m].name, inputs[m]);  // Warm.
    }
    const size_t kCal = static_cast<size_t>(flags.GetInt("cal_events", 1500));
    std::mutex mu;
    std::condition_variable cv;
    size_t done = 0;
    const int64_t c0 = NowNs();
    for (size_t i = 0; i < kCal; ++i) {
      const size_t m = i % sa.pipelines().size();
      Status st = probe.PredictAsync(sa.pipelines()[m].name, inputs[m],
                                     [&](Result<float>) {
                                       std::lock_guard<std::mutex> lock(mu);
                                       ++done;
                                       cv.notify_all();
                                     });
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        ++done;
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done >= kCal; });
    }
    const double cal_s = static_cast<double>(NowNs() - c0) / 1e9;
    capacity_rps = static_cast<double>(kCal) / cal_s;
    lat_us = 1e6 * static_cast<double>(shards) / capacity_rps;
  }
  // Base load keeps the MEAN below capacity: with the middle third at
  // burst_x, mean = base * (2 + burst_x) / 3. util_pct = 45 and burst_x = 4
  // put the mean at 0.9x capacity and the burst at 1.8x — a crowd the stack
  // can absorb by shedding, not sustained overload nothing could survive.
  const double util =
      static_cast<double>(flags.GetInt("util_pct", 45)) / 100.0;
  const double base_rps = flags.GetInt("base_rps", 0) > 0
                              ? static_cast<double>(flags.GetInt("base_rps", 0))
                              : util * capacity_rps;
  const double burst_x = static_cast<double>(flags.GetInt("burst_x", 4));
  const int64_t slo_us =
      flags.GetInt("slo_us", 0) > 0
          ? flags.GetInt("slo_us", 0)
          : static_cast<int64_t>(std::max(2000.0, 10.0 * lat_us));
  const size_t requests = static_cast<size_t>(flags.GetInt("requests", 20000));

  FlashCrowdOptions fopts;
  fopts.num_models = sa.pipelines().size();
  fopts.base_rps = base_rps;
  // Middle third bursts at burst_x, so the mean rate is (2+burst_x)/3 base.
  fopts.duration_s = static_cast<double>(requests) /
                     (base_rps * (2.0 + burst_x) / 3.0);
  fopts.burst_start_s = fopts.duration_s / 3.0;
  fopts.burst_duration_s = fopts.duration_s / 3.0;
  fopts.burst_x = burst_x;
  fopts.crowd_fraction = 0.7;
  fopts.crowd_model = 0;  // Zipf rank 0: the crowd chases what is already hot.
  fopts.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  const auto schedule = GenerateFlashCrowdSchedule(fopts);

  std::printf(
      "  %zu pipelines on %zu shards; calibrated %.0fus/pred "
      "(~%.0f rps capacity)\n  base %.0f rps, burst %.0fx for the middle "
      "third, SLO %lldus, %zu arrivals\n\n",
      sa.pipelines().size(), shards, lat_us, capacity_rps, base_rps, burst_x,
      static_cast<long long>(slo_us), schedule.size());

  const int64_t slo_ns = slo_us * 1000;
  const DriveResult no_shed = Drive(sa, sopts, schedule, inputs, slo_ns, false);
  PrintDrive("no-shed", no_shed, schedule.size());
  const DriveResult shed = Drive(sa, sopts, schedule, inputs, slo_ns, true);
  PrintDrive("shed", shed, schedule.size());

  const double ratio = shed.goodput / std::max(no_shed.goodput, 1e-9);
  std::printf("\n  goodput ratio (shed / no-shed): %.2fx\n\n", ratio);

  BenchJson json("resilience");
  json.Add("pipelines", static_cast<double>(sa.pipelines().size()));
  json.Add("shards", static_cast<double>(shards));
  json.Add("calibrated_latency_us", lat_us);
  json.Add("base_rps", base_rps);
  json.Add("burst_x", burst_x);
  json.Add("slo_us", static_cast<double>(slo_us));
  json.Add("arrivals", static_cast<double>(schedule.size()));
  json.Add("goodput_no_shed", no_shed.goodput);
  json.Add("goodput_shed", shed.goodput);
  json.Add("goodput_ratio", ratio);
  json.Add("p99_us_no_shed", no_shed.p99_us);
  json.Add("p99_us_shed", shed.p99_us);
  json.Add("shed_count", static_cast<double>(shed.shed));
  json.Add("expired_count", static_cast<double>(shed.expired));
  json.Add("late_no_shed", static_cast<double>(no_shed.late));
  json.Add("late_shed", static_cast<double>(shed.late));

  // Deadlines change WHICH bucket a request lands in, never whether it is
  // accounted: every arrival resolves exactly once in both runs.
  bool pass = ShapeCheck(
      no_shed.good + no_shed.late + no_shed.shed + no_shed.expired +
                  no_shed.errors == schedule.size() &&
          shed.good + shed.late + shed.shed + shed.expired + shed.errors ==
              schedule.size(),
      "every arrival resolves exactly once in both runs (no drops, no "
      "double completions)");
  const bool parallel_host = hw >= 2;
  // Smoke runs finish in well under 100ms of wall time, where the ratio is
  // dominated by calibration noise (a single scheduler hiccup moves capacity
  // 2x); --ratio_check=0 keeps the engagement checks but drops the ratio
  // claim, which only a full-scale run can observe. The smoke flags use a
  // sharper burst (burst_x=8) than the default, which keeps engagement
  // deterministic at that scale.
  const bool ratio_check = flags.GetBool("ratio_check", true);
  if (!ratio_check) {
    pass &= ShapeCheck(shed.shed + shed.expired > 0,
                       "shedding engaged under the flash crowd (admission "
                       "refusals or in-stack expiries > 0)");
    pass &= ShapeCheck(no_shed.late > 0,
                       "without deadlines the burst backlog serves SLO-dead "
                       "requests (late completions > 0)");
    std::printf(
        "  NOTE: --ratio_check=0 (smoke scale); goodput-ratio claims are "
        "only\n  observable at full scale, so they are reported but not "
        "checked.\n");
  } else if (parallel_host) {
    pass &= ShapeCheck(shed.shed + shed.expired > 0,
                       "shedding engaged under the flash crowd (admission "
                       "refusals or in-stack expiries > 0)");
    pass &= ShapeCheck(no_shed.late > 0,
                       "without deadlines the burst backlog serves SLO-dead "
                       "requests (late completions > 0)");
    pass &= ShapeCheck(
        ratio >= 1.2,
        "SLO-aware shedding sustains >= 1.2x no-shed goodput through the "
        "flash crowd (post-burst capacity serves live requests, not the "
        "backlog)");
  } else {
    // One core is a bistable regime: the crowd concentrates 70% of burst
    // arrivals on one model, adaptive batching soaks exactly that shape, and
    // whether the no-shed run collapses at all depends on which side of true
    // capacity the calibration draw landed. Overload engagement and the
    // goodput win are therefore reported, not asserted; what IS invariant is
    // that shedding never serves SLO-dead work in volume and never collapses
    // goodput (drops stay cheaper than the work they replace).
    std::printf(
        "  NOTE: single-core host; burst, backlog drain, and dispatcher "
        "timeslice one\n  core and concentrated-crowd batching can absorb "
        "the burst outright, so the\n  1.2x claim is unobservable. Checks "
        "degrade to no-collapse + no-late-service\n  guards.\n");
    pass &= ShapeCheck(
        ratio >= 0.5,
        "[1-core fallback] shedding never collapses goodput below 0.5x "
        "no-shed");
    pass &= ShapeCheck(
        shed.late * 200 <= schedule.size(),
        "[1-core fallback] with deadlines propagated, SLO-dead completions "
        "stay under 0.5% of arrivals (refused early instead of served "
        "late)");
  }
  json.Add("parallel_host", parallel_host ? "true" : "false");
  json.Add("ratio_checked", ratio_check ? "true" : "false");
  json.Add("shape_check", pass ? "PASS" : "FAIL");
  json.Write();
  (void)pass;  // Shape results are the printed contract; exit 0 like the suite.
  return 0;
}
